package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"sramco"
	"sramco/internal/mc"
)

// fakeStream installs a yieldStreamFn stub that emits the given checkpoints
// and returns a result built from the last one, counting invocations.
func fakeStream(s *Server, cps []sramco.MCCheckpoint, values map[mc.Metric][]float64, fail error) *atomic.Int64 {
	var calls atomic.Int64
	s.yieldStreamFn = func(ctx context.Context, cfg sramco.MCStreamConfig, emit func(sramco.MCCheckpoint) error) (*sramco.MCStreamResult, error) {
		calls.Add(1)
		for _, cp := range cps {
			if emit != nil {
				if err := emit(cp); err != nil {
					return nil, err
				}
			}
		}
		if fail != nil {
			return nil, fail
		}
		return &sramco.MCStreamResult{
			Config:      cfg,
			Final:       cps[len(cps)-1],
			Checkpoints: len(cps),
			Values:      values,
		}, nil
	}
	return &calls
}

// TestYieldStreamEndpoint runs a real streaming yield over HTTP: NDJSON
// checkpoint lines, monotonically growing sample counts, the last line
// marked final and covering all N samples.
func TestYieldStreamEndpoint(t *testing.T) {
	s := New(framework(t), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/yield?stream=1", "application/json",
		strings.NewReader(`{"flavor":"hvt","n":16,"seed":7,"metrics":["hsnm"],"sampler":"sobol"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	var cps []sramco.MCCheckpoint
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var cp sramco.MCCheckpoint
		if err := json.Unmarshal(sc.Bytes(), &cp); err != nil {
			t.Fatalf("line %d not a checkpoint: %v (%s)", len(cps)+1, err, sc.Text())
		}
		cps = append(cps, cp)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoint lines")
	}
	last := cps[len(cps)-1]
	if !last.Final || last.Samples != 16 {
		t.Fatalf("last line not final over all samples: %+v", last)
	}
	prev := 0
	for _, cp := range cps {
		if cp.Samples <= prev {
			t.Fatalf("sample counts not increasing: %+v", cps)
		}
		prev = cp.Samples
		if cp.HSNM == nil || cp.HSNM.Mean <= 0 {
			t.Fatalf("checkpoint missing HSNM stats: %+v", cp)
		}
	}
}

// TestYieldStreamNotCached asserts each ?stream=1 request runs its own
// engine — streams bypass the cache and the flight group.
func TestYieldStreamNotCached(t *testing.T) {
	s := New(framework(t), Config{})
	cp := sramco.MCCheckpoint{Samples: 32, Final: true}
	calls := fakeStream(s, []sramco.MCCheckpoint{cp}, nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, hdr, body := postJSON(t, ts.URL+"/v1/yield?stream=1", `{"flavor":"hvt","n":32}`)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, code, body)
		}
		if got := hdr.Get("X-Cache"); got != "" {
			t.Fatalf("request %d: stream carries cache tier %q", i, got)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("engine ran %d times for 2 stream requests, want 2", got)
	}
}

// TestYieldStreamMidStreamError asserts an engine failure after checkpoints
// have been sent becomes a trailing NDJSON error line on the 200 stream.
func TestYieldStreamMidStreamError(t *testing.T) {
	s := New(framework(t), Config{})
	cp := sramco.MCCheckpoint{Samples: 32}
	fakeStream(s, []sramco.MCCheckpoint{cp}, nil, errors.New("sample 33: newton diverged"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, body := postJSON(t, ts.URL+"/v1/yield?stream=1", `{"flavor":"hvt","n":64}`)
	if code != http.StatusOK {
		t.Fatalf("status %d (headers are sent before the engine can fail)", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want checkpoint + error: %s", len(lines), body)
	}
	var env errorEnvelope
	if err := json.Unmarshal([]byte(lines[1]), &env); err != nil || env.Error.Message == "" {
		t.Fatalf("trailing line is not an error envelope: %s", lines[1])
	}
	if !strings.Contains(env.Error.Message, "newton diverged") {
		t.Fatalf("error line %q lost the cause", env.Error.Message)
	}
}

// TestYieldRelCIRoutesThroughStreamEngine asserts a non-stream request with
// rel_ci set fills through the streaming engine and surfaces its weighted
// estimators, and that the response is cached like any other yield fill.
func TestYieldRelCIRoutesThroughStreamEngine(t *testing.T) {
	s := New(framework(t), Config{})
	mu3 := 0.121
	cp := sramco.MCCheckpoint{
		Samples:      96,
		WM:           &sramco.MCMetricStat{N: 96, Mean: 0.2, Std: 0.025, Mu3: mu3, CIHalf: 0.01, RelCI: 0.08},
		Delta:        sramco.Delta(),
		FailFraction: 0.125,
		FailLo:       0.07,
		FailHi:       0.21,
		Converged:    true,
		Final:        true,
	}
	calls := fakeStream(s, []sramco.MCCheckpoint{cp}, map[mc.Metric][]float64{mc.WM: {0.18, 0.2, 0.22}}, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"flavor":"hvt","n":4096,"seed":4,"metrics":["wm"],"rel_ci":0.1}`
	code, hdr, raw := postJSON(t, ts.URL+"/v1/yield", body)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first fill X-Cache %q, want miss", hdr.Get("X-Cache"))
	}
	var resp YieldResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Samples != 96 || !resp.Converged {
		t.Fatalf("streaming estimators not surfaced: %+v", resp)
	}
	if resp.MuMinus3Sigma["wm"] != mu3 {
		t.Fatalf("mu_minus_3sigma = %v, want weighted %g", resp.MuMinus3Sigma, mu3)
	}
	if resp.FailLo == nil || *resp.FailLo != 0.07 || resp.FailHi == nil || *resp.FailHi != 0.21 {
		t.Fatalf("fail CI not surfaced: %+v", resp)
	}
	if resp.WM == nil || resp.WM.Median != 0.2 {
		t.Fatalf("raw-value summary missing: %+v", resp.WM)
	}

	code2, hdr2, _ := postJSON(t, ts.URL+"/v1/yield", body)
	if code2 != http.StatusOK || hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d X-Cache %q, want hit", code2, hdr2.Get("X-Cache"))
	}
	if calls.Load() != 1 {
		t.Fatalf("engine ran %d times, want 1 (second request cached)", calls.Load())
	}
}
