// Package serve is the sramco optimization service: an HTTP/JSON layer over
// the co-optimization framework with a bounded LRU result cache, request
// coalescing, a worker pool with per-request deadlines, and drain-on-
// shutdown semantics.
//
// Endpoints:
//
//	POST /v1/optimize  — minimum-objective design search (OptimizeRequest)
//	POST /v1/evaluate  — analytical model on one explicit design point
//	POST /v1/pareto    — full energy-delay frontier of the search space
//	POST /v1/yield     — Monte Carlo margin analysis (YieldRequest)
//	POST /v1/batch     — many optimize/evaluate/pareto items in one NDJSON
//	                     body, results streamed back line by line
//	GET  /healthz      — liveness; 503 once draining
//	GET  /metrics      — obs registry snapshot (JSON; ?format=prom for
//	                     Prometheus text exposition)
//
// Requests are canonicalized (defaults filled, names lowercased) before
// anything else happens, and the canonical form is the cache key: two
// requests that mean the same computation hit the same cache entry no
// matter how they were spelled. Responses are cached as the exact bytes
// sent to the first caller, so cache hits are bit-identical to the fill.
// While a fill is in flight, identical requests coalesce onto it instead
// of starting their own search.
//
// The read path is three tiers (X-Cache reports which answered): the
// precomputed design-space catalog (`catalog`, see internal/catalog and
// DESIGN.md §9), the LRU result cache (`hit`), then a live fill on the
// worker pool (`miss`, or `coalesced` when the caller attached to another
// request's fill).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sramco"
	"sramco/internal/catalog"
	"sramco/internal/mc"
	"sramco/internal/num"
	"sramco/internal/obs"
)

// Service metrics. cache.miss counts fills (one per unique in-flight key),
// not lookups that found nothing: a request that coalesces onto a running
// fill counts under serve.coalesced only.
var (
	mRequests   = obs.NewCounter("serve.requests")
	mCacheHit   = obs.NewCounter("serve.cache.hit")
	mCacheMiss  = obs.NewCounter("serve.cache.miss")
	mCatalogHit = obs.NewCounter("serve.catalog.hit")
	mCoalesced  = obs.NewCounter("serve.coalesced")
	mErrors     = obs.NewCounter("serve.errors")
	mRejected   = obs.NewCounter("serve.rejected") // refused while draining
	gInflight   = obs.NewGauge("serve.inflight")
)

// errDraining rejects new work once shutdown has begun.
var errDraining = errors.New("serve: server is draining")

// Config tunes a Server; zero values select the defaults.
type Config struct {
	CacheSize int           // LRU result-cache entries (default 256; negative disables)
	Timeout   time.Duration // per-request compute deadline cap (default 60s)
	Workers   int           // concurrent optimizer runs (default GOMAXPROCS)

	// AccessLog, when non-nil, receives one structured line per request
	// (method, path, status, cache tier, duration, request ID). /healthz
	// and /metrics probe traffic is not logged.
	AccessLog *slog.Logger

	// Recorder, when non-nil, enables the GET /debug/trace endpoint, which
	// dumps the recorder's buffered spans grouped by trace. The caller is
	// responsible for also installing the recorder as (part of) the obs
	// sink — the server only reads from it.
	Recorder *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the optimization service. Create with New, mount Handler on an
// http.Server, and call Drain before exiting.
type Server struct {
	fw  *sramco.Framework
	cfg Config

	cache  *lruCache
	flight *flightGroup
	sem    chan struct{} // worker-pool slots

	// cat is the precomputed design-space catalog, consulted before the LRU
	// cache. Installed and swapped atomically (SetCatalog); nil when no
	// catalog is loaded.
	cat atomic.Pointer[catalog.Catalog]

	// baseCtx parents every compute context, so runs survive individual
	// client disconnects (other coalesced waiters may still want the
	// result) but die when the server gives up draining.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware

	// Test seams: the concurrency tests gate these to hold fills open.
	// evalHook, when set, runs at the top of every shared-Evaluator batch
	// eval so tests can hold an evaluate fill open past the batch deadline.
	optimizeFn    func(context.Context, sramco.Options) (*sramco.Optimum, error)
	paretoFn      func(context.Context, sramco.Options) (*sramco.ParetoResult, error)
	yieldFn       func(context.Context, sramco.MCConfig) (*sramco.MCResult, error)
	yieldStreamFn func(context.Context, sramco.MCStreamConfig, func(sramco.MCCheckpoint) error) (*sramco.MCStreamResult, error)
	evalHook      func()
}

// New builds a Server over a characterized framework.
func New(fw *sramco.Framework, cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		fw:         fw,
		cfg:        cfg,
		cache:      newLRUCache(cfg.CacheSize),
		flight:     newFlightGroup(),
		sem:        make(chan struct{}, cfg.Workers),
		baseCtx:    baseCtx,
		baseCancel: cancel,
		optimizeFn:    fw.OptimizeWithContext,
		paretoFn:      fw.ParetoSearchContext,
		yieldFn:       sramco.MonteCarloYieldContext,
		yieldStreamFn: sramco.MonteCarloYieldStream,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("/v1/pareto", s.handlePareto)
	s.mux.HandleFunc("/v1/yield", s.handleYield)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.Recorder != nil {
		s.mux.HandleFunc("/debug/trace", s.handleDebugTrace)
	}
	s.handler = s.instrument(s.mux)
	return s
}

// Handler returns the service's HTTP handler: the endpoint mux wrapped in
// the request-observability middleware (trace propagation, RED metrics,
// access logs — see instrument).
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops admitting /v1/* requests (healthz flips to 503), waits for
// every in-flight request to finish, and only then cancels the compute
// context. If ctx expires first, in-flight runs are canceled and Drain
// returns the ctx error — work is dropped only when the caller's drain
// budget runs out, never silently.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel(errDraining)
		return nil
	case <-ctx.Done():
		s.baseCancel(errDraining)
		<-done // runs unwind promptly once canceled
		return ctx.Err()
	}
}

// admit registers one in-flight request; it fails once draining. The
// returned release must be called when the request finishes.
func (s *Server) admit() (release func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		mRejected.Inc()
		return nil, errDraining
	}
	s.inflight.Add(1)
	// Gauge.Add, not Add-then-Set: concurrent Sets can land out of order
	// and leave the published gauge stale after both requests finish.
	gInflight.Add(1)
	return func() {
		gInflight.Add(-1)
		s.inflight.Done()
	}, nil
}

// acquire takes a worker-pool slot, waiting until one frees up or ctx is
// done.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (s *Server) release() { <-s.sem }

// effectiveTimeout caps a client-requested deadline by the server's.
func (s *Server) effectiveTimeout(timeoutMS int) time.Duration {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return d
}

// respond resolves one canonical request through the full read path:
// catalog, LRU cache, then a coalesced fill on the worker pool. The
// returned state names the tier that answered ("catalog", "hit", "miss" or
// "coalesced"). waitCtx governs only how long this caller waits for a
// result; the fill itself runs under the server's base context and compute
// cap — a coalesced fill may outlive the client that started it, and a
// client's short deadline must never poison the fill for patient waiters
// (DESIGN.md §8).
func (s *Server) respond(waitCtx context.Context, key string, fill func(ctx context.Context) (any, error)) (cached, string, error) {
	if cat := s.cat.Load(); cat != nil {
		if body, ok := cat.Lookup(key); ok {
			mCatalogHit.Inc()
			return cached{status: http.StatusOK, body: body}, "catalog", nil
		}
	}
	if res, ok := s.cache.Get(key); ok {
		mCacheHit.Inc()
		return res, "hit", nil
	}

	res, shared, err := s.flight.Do(waitCtx, key, func() (cached, error) {
		mCacheMiss.Inc()
		// The fill's deadline is the server cap, never the first caller's
		// requested timeout: waitCtx already bounds each caller's wait, and
		// deriving runCtx from a client deadline would abort the shared
		// computation for everyone coalesced onto it. Only the leader's
		// trace ID carries over, so the fill's search spans join the trace
		// of the request that started it (coalesced waiters see the result,
		// not the spans — DESIGN.md §10).
		runCtx, cancelRun := context.WithTimeout(s.baseCtx, s.cfg.Timeout)
		defer cancelRun()
		runCtx = obs.ContextWithTrace(runCtx, obs.TraceIDFrom(waitCtx))
		if err := s.acquire(runCtx); err != nil {
			return cached{}, err
		}
		defer s.release()
		v, err := fill(runCtx)
		if err != nil {
			if errors.Is(err, sramco.ErrInfeasible) {
				// Infeasibility is a deterministic property of the canonical
				// request: cache the structured 422 envelope exactly like a
				// success so identical requests never re-run the search.
				aerr := asAPIError(err)
				if b, merr := json.Marshal(errorEnvelope{Error: *aerr}); merr == nil {
					res := cached{status: aerr.Status, body: b}
					s.cache.Put(key, res)
					return res, nil
				}
			}
			return cached{}, err
		}
		b, err := json.Marshal(v)
		if err != nil {
			return cached{}, fmt.Errorf("serve: encoding response: %w", err)
		}
		res := cached{status: http.StatusOK, body: b}
		s.cache.Put(key, res)
		return res, nil
	})
	state := "miss"
	if shared {
		mCoalesced.Inc()
		state = "coalesced"
	}
	return res, state, err
}

// serveCached is the shared request path of every single-item /v1/*
// endpoint: admit, resolve through respond, write the result.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, timeoutMS int, fill func(ctx context.Context) (any, error)) {
	mRequests.Inc()
	release, err := s.admit()
	if err != nil {
		writeError(w, asAPIError(err))
		return
	}
	defer release()

	waitCtx, cancelWait := context.WithTimeout(r.Context(), s.effectiveTimeout(timeoutMS))
	defer cancelWait()

	res, state, err := s.respond(waitCtx, key, fill)
	if err != nil {
		writeError(w, asAPIError(err))
		return
	}
	writeCached(w, res, state)
}

// OptimizeResponse is the body of a successful /v1/optimize call. Request
// echoes the canonical (normalized, deadline-stripped) request that keyed
// the cache entry.
type OptimizeResponse struct {
	Request OptimizeRequest    `json:"request"`
	Design  sramco.Design      `json:"design"`
	EDP     float64            `json:"edp_js"`
	DelayS  float64            `json:"delay_s"`
	EnergyJ float64            `json:"energy_j"`
	Result  *sramco.Result     `json:"result"`
	Stats   sramco.SearchStats `json:"search_stats"`
}

// optimizeResult runs the design search for a canonical request and builds
// the response value. Shared by the /v1/optimize handler, /v1/batch items
// and the catalog builder, which guarantees catalog entries are built by
// the exact code path a live miss would take.
func (s *Server) optimizeResult(ctx context.Context, req OptimizeRequest) (any, error) {
	opts, err := req.options()
	if err != nil {
		return nil, err
	}
	opt, err := s.optimizeFn(ctx, opts)
	if err != nil {
		return nil, err
	}
	scrubStats(&opt.Stats)
	return &OptimizeResponse{
		Request: req,
		Design:  opt.Best.Design,
		EDP:     opt.Best.Result.EDP,
		DelayS:  opt.Best.Result.DArray,
		EnergyJ: opt.Best.Result.EArray,
		Result:  opt.Best.Result,
		Stats:   opt.Stats,
	}, nil
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodePost(w, r, &req) {
		return
	}
	if aerr := req.normalize(); aerr != nil {
		writeError(w, aerr)
		return
	}
	timeoutMS := req.TimeoutMS
	req.TimeoutMS = 0 // the deadline shapes the wait, not the computation
	s.serveCached(w, r, req.key("optimize"), timeoutMS, func(ctx context.Context) (any, error) {
		return s.optimizeResult(ctx, req)
	})
}

// EvaluateResponse is the body of a successful /v1/evaluate call.
type EvaluateResponse struct {
	Request EvaluateRequest `json:"request"`
	EDP     float64         `json:"edp_js"`
	DelayS  float64         `json:"delay_s"`
	EnergyJ float64         `json:"energy_j"`
	Result  *sramco.Result  `json:"result"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if !decodePost(w, r, &req) {
		return
	}
	if aerr := req.normalize(); aerr != nil {
		writeError(w, aerr)
		return
	}
	s.serveCached(w, r, req.key(), 0, func(ctx context.Context) (any, error) {
		return s.evaluateResult(req, nil)
	})
}

// evaluateResult evaluates one explicit design point and builds the
// response value. When ev is non-nil the point runs through the shared
// prepared Evaluator instead of a fresh array.Evaluate — bit-identical by
// the Evaluator contract (DESIGN.md §7), so /v1/batch and /v1/evaluate can
// populate the same cache entries.
func (s *Server) evaluateResult(req EvaluateRequest, ev *batchEvaluator) (any, error) {
	flavor, design, act, err := req.design(s.fw)
	if err != nil {
		return nil, err
	}
	var res *sramco.Result
	if ev != nil {
		res, err = ev.eval(flavor, design, act)
	} else {
		res, err = s.fw.Evaluate(flavor, design, act)
	}
	if err != nil {
		// The model rejects structurally invalid points with plain
		// errors; surface them as client errors, not 500s.
		return nil, badRequest("%v", err)
	}
	return &EvaluateResponse{
		Request: req,
		EDP:     res.EDP,
		DelayS:  res.DArray,
		EnergyJ: res.EArray,
		Result:  res,
	}, nil
}

// ParetoResponse is the body of a successful /v1/pareto call.
type ParetoResponse struct {
	Request OptimizeRequest      `json:"request"`
	Front   []sramco.DesignPoint `json:"front"`
	Stats   sramco.SearchStats   `json:"search_stats"`
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodePost(w, r, &req) {
		return
	}
	if aerr := req.normalize(); aerr != nil {
		writeError(w, aerr)
		return
	}
	timeoutMS := req.TimeoutMS
	req.TimeoutMS = 0
	s.serveCached(w, r, req.key("pareto"), timeoutMS, func(ctx context.Context) (any, error) {
		return s.paretoResult(ctx, req)
	})
}

// paretoResult sweeps the full frontier for a canonical request; shared by
// the /v1/pareto handler, /v1/batch items and the catalog builder.
func (s *Server) paretoResult(ctx context.Context, req OptimizeRequest) (any, error) {
	opts, err := req.options()
	if err != nil {
		return nil, err
	}
	res, err := s.paretoFn(ctx, opts)
	if err != nil {
		return nil, err
	}
	scrubStats(&res.Stats)
	return &ParetoResponse{Request: req, Front: res.Front, Stats: res.Stats}, nil
}

// scrubStats zeroes the environmental search-stats fields (wall-clock time,
// worker count) before a response is encoded. Response bodies are cached,
// replayed verbatim and precomputed into catalogs, so they must depend only
// on the canonical request and the technology — not on the machine or the
// moment that happened to run the fill.
func scrubStats(st *sramco.SearchStats) {
	st.Wall = 0
	st.Workers = 0
}

// YieldResponse is the body of a successful /v1/yield call: the margin
// summaries and the paper's yield statistics, without the raw samples.
type YieldResponse struct {
	Request YieldRequest `json:"request"`
	Samples int          `json:"samples"`

	HSNM *num.Summary `json:"hsnm,omitempty"`
	RSNM *num.Summary `json:"rsnm,omitempty"`
	WM   *num.Summary `json:"wm,omitempty"`

	// MuMinus3Sigma is the paper's μ−3σ yield statistic per computed metric
	// (importance-weighted when the request set a tilt).
	MuMinus3Sigma map[string]float64 `json:"mu_minus_3sigma"`
	// DeltaV is the yield requirement δ = 0.35·Vdd; FailFraction is the
	// (weighted) fraction of samples whose minimum margin falls below it.
	DeltaV       float64 `json:"delta_v"`
	FailFraction float64 `json:"fail_fraction"`

	// Streaming-estimator extras, present when the request set rel_ci or a
	// tilt: convergence state and the Wilson 95% bounds on the fail fraction.
	Converged bool     `json:"converged,omitempty"`
	FailLo    *float64 `json:"fail_ci_lo,omitempty"`
	FailHi    *float64 `json:"fail_ci_hi,omitempty"`
}

func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	var req YieldRequest
	if !decodePost(w, r, &req) {
		return
	}
	if aerr := req.normalize(); aerr != nil {
		writeError(w, aerr)
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.handleYieldStream(w, r, req)
		return
	}
	timeoutMS := req.TimeoutMS
	req.TimeoutMS = 0
	s.serveCached(w, r, req.key(), timeoutMS, func(ctx context.Context) (any, error) {
		if req.RelCI > 0 || req.Tilt > 1 {
			return s.yieldStreamResult(ctx, req)
		}
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		res, err := s.yieldFn(ctx, cfg)
		if err != nil {
			return nil, err
		}
		resp := &YieldResponse{
			Request:       req,
			Samples:       len(res.Samples),
			MuMinus3Sigma: map[string]float64{},
			DeltaV:        sramco.Delta(),
			FailFraction:  res.FailFraction(sramco.Delta()),
		}
		if cfg.Metrics&mc.HSNM != 0 {
			s := res.HSNM
			resp.HSNM = &s
			resp.MuMinus3Sigma["hsnm"] = mc.MuMinusKSigma(s, 3)
		}
		if cfg.Metrics&mc.RSNM != 0 {
			s := res.RSNM
			resp.RSNM = &s
			resp.MuMinus3Sigma["rsnm"] = mc.MuMinusKSigma(s, 3)
		}
		if cfg.Metrics&mc.WM != 0 {
			s := res.WM
			resp.WM = &s
			resp.MuMinus3Sigma["wm"] = mc.MuMinusKSigma(s, 3)
		}
		return resp, nil
	})
}

// yieldStreamResult fills a non-streaming /v1/yield request through the
// streaming engine, used whenever the request asks for estimator features
// the fixed-N path does not have (early stop on rel_ci, importance tilt).
// Raw-value summaries describe the drawn distribution; μ−3σ and the fail
// fraction come from the weighted checkpoint estimators.
func (s *Server) yieldStreamResult(ctx context.Context, req YieldRequest) (any, error) {
	scfg, err := req.streamConfig()
	if err != nil {
		return nil, err
	}
	scfg.KeepValues = true
	res, err := s.yieldStreamFn(ctx, scfg, nil)
	if err != nil {
		return nil, err
	}
	final := res.Final
	resp := &YieldResponse{
		Request:       req,
		Samples:       final.Samples,
		MuMinus3Sigma: map[string]float64{},
		DeltaV:        final.Delta,
		FailFraction:  final.FailFraction,
		Converged:     final.Converged,
		FailLo:        &final.FailLo,
		FailHi:        &final.FailHi,
	}
	summarize := func(m mc.Metric) *num.Summary {
		vals := res.Values[m]
		if len(vals) == 0 {
			return nil
		}
		sum := num.Summarize(vals)
		return &sum
	}
	if final.HSNM != nil {
		resp.HSNM = summarize(mc.HSNM)
		resp.MuMinus3Sigma["hsnm"] = final.HSNM.Mu3
	}
	if final.RSNM != nil {
		resp.RSNM = summarize(mc.RSNM)
		resp.MuMinus3Sigma["rsnm"] = final.RSNM.Mu3
	}
	if final.WM != nil {
		resp.WM = summarize(mc.WM)
		resp.MuMinus3Sigma["wm"] = final.WM.Mu3
	}
	return resp, nil
}

// handleYieldStream answers POST /v1/yield?stream=1: NDJSON checkpoint
// lines as the streaming engine converges, the last one marked final (and
// converged when the run early-stopped on rel_ci). Streams are never cached
// or coalesced — each request runs its own engine under the client's
// deadline — so two identical streams emit identical lines but compute
// independently. A mid-stream failure becomes a trailing {"error": ...}
// line, since the 200 header is already on the wire.
func (s *Server) handleYieldStream(w http.ResponseWriter, r *http.Request, req YieldRequest) {
	mRequests.Inc()
	release, err := s.admit()
	if err != nil {
		writeError(w, asAPIError(err))
		return
	}
	defer release()

	timeoutMS := req.TimeoutMS
	req.TimeoutMS = 0
	ctx, cancel := context.WithTimeout(r.Context(), s.effectiveTimeout(timeoutMS))
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		writeError(w, asAPIError(err))
		return
	}
	defer s.release()

	scfg, err := req.streamConfig()
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	_, err = s.yieldStreamFn(ctx, scfg, func(cp sramco.MCCheckpoint) error {
		if err := enc.Encode(cp); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		mErrors.Inc()
		// Best effort: the client may already be gone.
		_ = enc.Encode(errorEnvelope{Error: *asAPIError(err)})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sampleRuntimeGauges()
	snap := obs.Default().Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WriteProm(w); err != nil {
			mErrors.Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := snap.WriteJSON(w); err != nil {
		mErrors.Inc()
	}
}

// handleDebugTrace answers GET /debug/trace: the span recorder's buffered
// events grouped by trace ID, most recently active trace first, up to
// ?limit=N traces (default 16, 0 = all).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	limit := 16
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, badRequest("limit query parameter %q must be a non-negative integer", q))
			return
		}
		limit = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.cfg.Recorder.Traces(limit)); err != nil {
		mErrors.Inc()
	}
}

// decodePost enforces POST and strict-decodes the body into dst, writing
// the error response itself when it returns false.
func decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed, Message: "use POST with a JSON body"})
		return false
	}
	if aerr := decodeJSON(r.Body, dst); aerr != nil {
		writeError(w, aerr)
		return false
	}
	return true
}

// errorEnvelope is the structured body of every non-2xx response.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

func writeError(w http.ResponseWriter, aerr *apiError) {
	mErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(aerr.Status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: *aerr})
}

// writeCached replays a cached response: the tier that answered goes in
// X-Cache, and a cached failure (422 infeasible envelope) replays its
// original status.
func writeCached(w http.ResponseWriter, res cached, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	if res.status != http.StatusOK {
		mErrors.Inc()
		w.WriteHeader(res.status)
	}
	_, _ = w.Write(res.body)
}

// isDeadline reports whether err is (or wraps) a deadline expiry.
func isDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// isCanceled reports whether err is (or wraps) a context cancellation.
func isCanceled(err error) bool { return errors.Is(err, context.Canceled) }
