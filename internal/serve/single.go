package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent work by key: while a fill for a key is
// in flight, later callers wait for its result instead of starting their
// own. Unlike golang.org/x/sync/singleflight (which this deliberately
// mirrors in miniature, as the module takes no dependencies), a waiter
// whose own context expires stops waiting without disturbing the leader —
// the fill keeps running for everyone else.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall

	// nWaiters counts callers currently coalesced onto some in-flight
	// fill; tests use it to know every concurrent caller has attached.
	nWaiters atomic.Int64
}

type flightCall struct {
	done chan struct{} // closed when the fill finishes
	res  cached
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. The first caller starts
// the fill on its own goroutine and every caller — the leader included —
// waits for the result under its own ctx: a caller whose deadline expires
// walks away while the fill keeps running for whoever is still waiting.
// shared reports whether this caller coalesced onto another's fill (false
// for the one that started it).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (cached, error)) (res cached, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.nWaiters.Add(1)
		defer g.nWaiters.Add(-1)
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return cached{}, true, context.Cause(ctx)
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		c.res, c.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	select {
	case <-c.done:
		return c.res, false, c.err
	case <-ctx.Done():
		return cached{}, false, context.Cause(ctx)
	}
}

// waiters returns the number of callers currently waiting on some fill.
func (g *flightGroup) waiters() int { return int(g.nWaiters.Load()) }
